package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// ErrBackpressure is returned by Ingester.Submit when the bounded batch
// queue is full: the writer is not keeping up and the caller should
// shed load (an HTTP frontend maps it to 429 + Retry-After) instead of
// buffering without bound.
var ErrBackpressure = errors.New("core: ingest queue full")

// ErrIngesterClosed is returned by Submit after Close has begun: the
// ingester is draining and accepts no new batches.
var ErrIngesterClosed = errors.New("core: ingester closed")

// IngestConfig tunes an Ingester. The zero value selects the defaults.
type IngestConfig struct {
	// QueueDepth bounds the batches queued awaiting persistence
	// (default 64). A full queue makes Submit fail fast with
	// ErrBackpressure — the memory bound that keeps a burst of
	// producers from growing the heap without limit.
	QueueDepth int
	// MaxGroup bounds how many queued batches one group commit folds
	// together (default 16): the writer drains up to MaxGroup batches,
	// persists them back-to-back, then fsyncs once for the whole
	// group, so a deep queue amortizes the sync cost instead of paying
	// it per batch.
	MaxGroup int
	// NoSync skips the fsync before acknowledgment. Acknowledged
	// batches are then only as durable as the OS page cache — they
	// survive a process crash but not a machine crash.
	NoSync bool
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxGroup <= 0 {
		c.MaxGroup = 16
	}
	return c
}

// IngestStats is a point-in-time snapshot of an Ingester's counters.
type IngestStats struct {
	Batches   int64 // batches acknowledged (persist attempted, ack sent)
	Rows      int64 // attribute rows written by acknowledged batches
	Groups    int64 // group commits (one fsync each unless NoSync)
	Rejected  int64 // Submit calls refused with ErrBackpressure
	Queued    int   // batches currently waiting in the queue
	PeakQueue int64 // high-water mark of Queued since start
}

// Ingester serializes extraction batches into a store.Engine through a
// single writer goroutine with a bounded queue and group commit. It is
// the write path of a long-lived server: many producers Submit
// concurrently, exactly one goroutine calls PersistAll (so persisted row
// ids never collide), and a batch is acknowledged only after its rows —
// and the fsync covering them — have succeeded. A full queue rejects
// instead of buffering, which is what keeps a daemon's memory bounded
// under overload.
type Ingester struct {
	db  store.Engine
	cfg IngestConfig

	mu     sync.RWMutex // guards closed vs. the jobs channel close
	closed bool
	jobs   chan ingestJob

	loopDone chan struct{}
	closeErr error

	batches  atomic.Int64
	rows     atomic.Int64
	groups   atomic.Int64
	rejected atomic.Int64
	peak     atomic.Int64
}

type ingestJob struct {
	exs  []Extraction
	done chan ackResult
}

type ackResult struct {
	rows int
	err  error
}

// NewIngester starts the writer goroutine. Callers must Close it to
// drain the queue and release the goroutine; Close does not close the
// underlying engine.
func NewIngester(db store.Engine, cfg IngestConfig) *Ingester {
	cfg = cfg.withDefaults()
	ing := &Ingester{
		db:       db,
		cfg:      cfg,
		jobs:     make(chan ingestJob, cfg.QueueDepth),
		loopDone: make(chan struct{}),
	}
	go ing.run()
	return ing
}

// Submit queues one batch and blocks until the writer has persisted it
// (returning the attribute rows written) or refuses it. It fails fast
// with ErrBackpressure when the queue is full and ErrIngesterClosed
// after Close. A ctx cancellation while waiting returns ctx.Err(), but
// the batch is already queued and may still persist — the caller must
// treat it as unacknowledged, not as absent.
func (ing *Ingester) Submit(ctx context.Context, exs []Extraction) (int, error) {
	if len(exs) == 0 {
		return 0, nil
	}
	j := ingestJob{exs: exs, done: make(chan ackResult, 1)}
	ing.mu.RLock()
	if ing.closed {
		ing.mu.RUnlock()
		return 0, ErrIngesterClosed
	}
	select {
	case ing.jobs <- j:
		if q := int64(len(ing.jobs)); q > ing.peak.Load() {
			ing.peak.Store(q) // racy max is fine for a gauge
		}
	default:
		ing.mu.RUnlock()
		ing.rejected.Add(1)
		return 0, ErrBackpressure
	}
	ing.mu.RUnlock()

	select {
	case r := <-j.done:
		return r.rows, r.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// run is the single writer: it drains up to MaxGroup queued batches,
// persists them in arrival order, fsyncs once, then acknowledges each.
func (ing *Ingester) run() {
	defer close(ing.loopDone)
	for {
		j, ok := <-ing.jobs
		if !ok {
			return
		}
		group := []ingestJob{j}
	fill:
		for len(group) < ing.cfg.MaxGroup {
			select {
			case j2, ok2 := <-ing.jobs:
				if !ok2 {
					break fill
				}
				group = append(group, j2)
			default:
				break fill
			}
		}

		acks := make([]ackResult, len(group))
		anyOK := false
		for i, g := range group {
			n, err := PersistAll(ing.db, g.exs)
			acks[i] = ackResult{rows: n, err: err}
			if err == nil {
				anyOK = true
			}
		}
		if !ing.cfg.NoSync && anyOK {
			if err := ing.db.Sync(); err != nil {
				// Without the fsync no batch in the group is durable;
				// none may be acknowledged as persisted.
				for i := range acks {
					if acks[i].err == nil {
						acks[i].err = err
					}
				}
			}
		}
		ing.groups.Add(1)
		for i, g := range group {
			if acks[i].err == nil {
				ing.batches.Add(1)
				ing.rows.Add(int64(acks[i].rows))
			}
			g.done <- acks[i]
		}
	}
}

// Close stops accepting batches, drains everything already queued
// through the writer (each queued batch still gets persisted, fsynced
// and acknowledged), issues a final Sync, and releases the goroutine.
// Safe to call more than once.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	if !ing.closed {
		ing.closed = true
		close(ing.jobs)
	}
	ing.mu.Unlock()
	<-ing.loopDone
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closeErr == nil {
		ing.closeErr = ing.db.Sync()
	}
	return ing.closeErr
}

// Stats snapshots the ingester's counters.
func (ing *Ingester) Stats() IngestStats {
	return IngestStats{
		Batches:   ing.batches.Load(),
		Rows:      ing.rows.Load(),
		Groups:    ing.groups.Load(),
		Rejected:  ing.rejected.Load(),
		Queued:    len(ing.jobs),
		PeakQueue: ing.peak.Load(),
	}
}
