package core

import (
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/id3"
	"repro/internal/records"
	"repro/internal/textproc"
)

// The parity tests pin the refactor's central promise: routing the
// decision trees through the classify.Backend interface changes NOTHING
// about their numbers. Both harnesses consume the same shuffle stream
// from the same seed, split folds the same way, and aggregate
// identically, so every field of the result — accuracy, per-round
// stddev, feature-count range, per-class metrics, the full confusion
// matrix — must be equal to the last bit.

// id3Examples converts the interface-shaped examples back to the raw
// id3 shape, sharing the underlying feature maps.
func id3Examples(exs []classify.Example) []id3.Example {
	out := make([]id3.Example, len(exs))
	for i, e := range exs {
		out[i] = id3.Example{Features: e.Features(), Class: e.Class}
	}
	return out
}

func TestBackendParityID3(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	exs := SmokingField().Examples(recs)

	got := classify.CrossValidate(classify.ID3{}, exs, 5, 10, 7)
	want := id3.CrossValidate(id3Examples(exs), 5, 10, 7)
	assertParity(t, got, want)
}

func TestBackendParityGini(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	exs := SmokingField().Examples(recs)

	got := classify.CrossValidate(classify.Gini{}, exs, 5, 10, 7)
	want := id3.CrossValidateWith(id3Examples(exs), 5, 10, 7, id3.TrainGini)
	assertParity(t, got, want)
}

func assertParity(t *testing.T, got classify.CVResult, want id3.CVResult) {
	t.Helper()
	if got.Accuracy != want.Accuracy {
		t.Errorf("accuracy %v != %v (must be bit-identical)", got.Accuracy, want.Accuracy)
	}
	if got.StdDev != want.StdDev {
		t.Errorf("stddev %v != %v (must be bit-identical)", got.StdDev, want.StdDev)
	}
	if got.MinFeatures != want.MinFeatures || got.MaxFeatures != want.MaxFeatures {
		t.Errorf("model size %d–%d != features %d–%d",
			got.MinFeatures, got.MaxFeatures, want.MinFeatures, want.MaxFeatures)
	}
	if got.Rounds != want.Rounds || got.Folds != want.Folds {
		t.Errorf("protocol %d×%d != %d×%d", got.Rounds, got.Folds, want.Rounds, want.Folds)
	}
	if !reflect.DeepEqual(got.Confusion, want.Confusion) {
		t.Errorf("confusion matrices differ:\n%v\n%v", got.Confusion, want.Confusion)
	}
	wantPC := map[string]classify.ClassMetrics{}
	for c, m := range want.PerClass {
		wantPC[c] = classify.ClassMetrics{Precision: m.Precision, Recall: m.Recall, Support: m.Support}
	}
	if !reflect.DeepEqual(got.PerClass, wantPC) {
		t.Errorf("per-class metrics differ:\n%v\n%v", got.PerClass, wantPC)
	}
}

// TestTrainCategoricalBackendDefault pins that a nil Backend still means
// the paper's ID3 trees, so pre-refactor callers are unaffected.
func TestTrainCategoricalBackendDefault(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	c := TrainCategorical(SmokingField(), recs)
	if c.Backend() != "id3" {
		t.Errorf("default backend = %q, want id3", c.Backend())
	}

	exs := id3Examples(SmokingField().Examples(recs))
	tree := id3.Train(exs)
	for _, r := range recs {
		if r.Gold.Smoking == "" {
			continue
		}
		want := tree.Classify(SmokingField().Features(textproc.Analyze(r.Text)))
		if got := c.Classify(r.Text); got != want {
			t.Errorf("record %d: interface path predicted %q, direct tree %q", r.ID, got, want)
		}
	}
}
