package linkgram

import (
	"testing"

	"repro/internal/pos"
	"repro/internal/records"
	"repro/internal/textproc"
)

// TestCorpusVitalsAllParse is the property behind E1: every canonical
// vitals and GYN sentence in the default corpus parses, and the linkage
// is planar and connected.
func TestCorpusVitalsAllParse(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	parsed, failed := 0, 0
	for _, r := range recs {
		secs := textproc.SplitSections(r.Text)
		for _, header := range []string{"Vitals", "GYN History"} {
			sec, ok := textproc.FindSection(secs, header)
			if !ok {
				continue
			}
			for _, sent := range textproc.SplitSentences(sec.Body) {
				lk, err := ParseSentence(sent)
				if err != nil {
					failed++
					t.Errorf("record %d %s: no linkage for %q", r.ID, header, sent.Text)
					continue
				}
				parsed++
				verifyLinkageInvariants(t, sent.Text, lk)
			}
		}
	}
	if parsed == 0 {
		t.Fatal("no sentences parsed")
	}
	t.Logf("parsed %d sentences, %d failures", parsed, failed)
}

// TestCorpusDiverseParseRate checks that most (not necessarily all)
// style-diverse sentences still parse — the fallback patterns cover the
// rest, which is exactly the paper's §3.1 design.
func TestCorpusDiverseParseRate(t *testing.T) {
	opts := records.DefaultGenOptions()
	opts.StyleDiversity = 1.0
	recs := records.Generate(opts)
	parsed, total := 0, 0
	for _, r := range recs {
		secs := textproc.SplitSections(r.Text)
		sec, ok := textproc.FindSection(secs, "Vitals")
		if !ok {
			continue
		}
		for _, sent := range textproc.SplitSentences(sec.Body) {
			total++
			if lk, err := ParseSentence(sent); err == nil {
				parsed++
				verifyLinkageInvariants(t, sent.Text, lk)
			}
		}
	}
	if total == 0 {
		t.Fatal("no sentences found")
	}
	rate := float64(parsed) / float64(total)
	t.Logf("diverse vitals parse rate: %d/%d = %.0f%%", parsed, total, 100*rate)
	if rate < 0.5 {
		t.Errorf("parse rate %.0f%% too low for the fallback design to carry the rest", 100*rate)
	}
}

// verifyLinkageInvariants checks planarity, connectivity and degree.
func verifyLinkageInvariants(t *testing.T, text string, lk *Linkage) {
	t.Helper()
	for i, a := range lk.Links {
		for _, b := range lk.Links[i+1:] {
			if (a.Left < b.Left && b.Left < a.Right && a.Right < b.Right) ||
				(b.Left < a.Left && a.Left < b.Right && b.Right < a.Right) {
				t.Errorf("%q: crossing links %v × %v", text, a, b)
			}
		}
	}
	deg := make([]int, len(lk.Words))
	for _, l := range lk.Links {
		if l.Left < 0 || l.Right >= len(lk.Words) || l.Left >= l.Right {
			t.Fatalf("%q: malformed link %v", text, l)
		}
		deg[l.Left]++
		deg[l.Right]++
	}
	for i := 1; i < len(lk.Words); i++ {
		if deg[i] == 0 {
			t.Errorf("%q: disconnected word %q", text, lk.Words[i].Text)
		}
	}
	dist := lk.Graph(UniformWeights).ShortestFrom(0)
	for i := range dist {
		if dist[i] > 1e17 {
			t.Errorf("%q: word %q unreachable from wall", text, lk.Words[i].Text)
		}
	}
}

// TestParseDeterministic: the same input always yields the same linkage.
func TestParseDeterministic(t *testing.T) {
	sents := textproc.SplitSentences("Blood pressure is 144/90, pulse of 84, and weight of 154 pounds.")
	tagged := pos.TagSentence(sents[0])
	first, err := Parse(tagged)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Parse(tagged)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Links) != len(first.Links) {
			t.Fatalf("run %d: %d links vs %d", i, len(again.Links), len(first.Links))
		}
		for j := range first.Links {
			if first.Links[j] != again.Links[j] {
				t.Fatalf("run %d: link %d differs: %v vs %v", i, j, first.Links[j], again.Links[j])
			}
		}
	}
}
