package textproc

import (
	"strings"
	"testing"
)

func TestSplitSentencesBasic(t *testing.T) {
	text := "She quit smoking five years ago. She is currently a smoker. She has never smoked."
	sents := SplitSentences(text)
	if len(sents) != 3 {
		t.Fatalf("got %d sentences, want 3: %+v", len(sents), sents)
	}
	if !strings.HasPrefix(sents[0].Text, "She quit") {
		t.Errorf("sentence 0 = %q", sents[0].Text)
	}
	if !strings.HasPrefix(sents[2].Text, "She has never") {
		t.Errorf("sentence 2 = %q", sents[2].Text)
	}
}

func TestSplitSentencesAbbreviation(t *testing.T) {
	text := "She was seen by Dr. Brooks today. She will return next week."
	sents := SplitSentences(text)
	if len(sents) != 2 {
		t.Fatalf("got %d sentences, want 2: %+v", len(sents), sents)
	}
	if !strings.Contains(sents[0].Text, "Brooks") {
		t.Errorf("abbreviation split sentence: %q", sents[0].Text)
	}
}

func TestSplitSentencesInitial(t *testing.T) {
	text := "Records were reviewed by Ari D. Brooks on Monday. No issues were found."
	sents := SplitSentences(text)
	if len(sents) != 2 {
		t.Fatalf("got %d sentences, want 2: %v", len(sents), sentTexts(sents))
	}
}

func TestSplitSentencesNewlineFragments(t *testing.T) {
	text := "Blood pressure: 142/78\nPulse: 96\nWeight: 211"
	sents := SplitSentences(text)
	if len(sents) != 3 {
		t.Fatalf("got %d sentences, want 3: %v", len(sents), sentTexts(sents))
	}
}

func TestSplitSentencesDecimalNotBoundary(t *testing.T) {
	text := "Temperature of 98.3 was recorded."
	sents := SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("decimal split the sentence: %v", sentTexts(sents))
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if got := SplitSentences(""); len(got) != 0 {
		t.Errorf("SplitSentences(\"\") = %v", got)
	}
	if got := SplitSentences("..."); len(got) != 0 {
		t.Errorf("punctuation-only input produced sentences: %v", got)
	}
}

func TestSentenceHelpers(t *testing.T) {
	sents := SplitSentences("She has never smoked.")
	if len(sents) != 1 {
		t.Fatalf("want 1 sentence, got %d", len(sents))
	}
	s := sents[0]
	if !s.ContainsWord("never") || !s.ContainsWord("NEVER") {
		t.Error("ContainsWord failed for 'never'")
	}
	if s.ContainsWord("always") {
		t.Error("ContainsWord false positive")
	}
	ws := s.WordTexts()
	want := []string{"she", "has", "never", "smoked"}
	if len(ws) != len(want) {
		t.Fatalf("WordTexts = %v, want %v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("WordTexts[%d] = %q, want %q", i, ws[i], want[i])
		}
	}
}

func sentTexts(sents []Sentence) []string {
	out := make([]string, len(sents))
	for i, s := range sents {
		out[i] = s.Text
	}
	return out
}
