package core

import (
	"testing"

	"repro/internal/records"
)

const vitalsRecord = `Patient:  1
History of Present Illness:  Ms. 1 is a 50-year-old woman who underwent a screening mammogram.
GYN History:  Menarche at age 10, gravida 4, para 3, last menstrual period about a year ago.  First live birth at age 18.
Vitals:  Blood pressure is 144/90, pulse of 84, and weight of 154.
`

func TestNumericExtractionFullRecord(t *testing.T) {
	x := NewNumericExtractor(LinkGrammar)
	got := x.Extract(vitalsRecord)
	want := map[string]float64{
		records.AttrAge:           50,
		records.AttrMenarche:      10,
		records.AttrGravida:       4,
		records.AttrPara:          3,
		records.AttrFirstBirthAge: 18,
		records.AttrBloodPressure: 144,
		records.AttrPulse:         84,
		records.AttrWeight:        154,
	}
	for attr, val := range want {
		v, ok := got[attr]
		if !ok {
			t.Errorf("attribute %q not extracted; got %v", attr, got)
			continue
		}
		if v.Value != val {
			t.Errorf("%q = %v, want %v", attr, v.Value, val)
		}
	}
	if bp := got[records.AttrBloodPressure]; !bp.Ratio || bp.Value2 != 90 {
		t.Errorf("blood pressure = %+v, want ratio 144/90", got[records.AttrBloodPressure])
	}
}

func TestNumericExtractionStrategiesOnVitals(t *testing.T) {
	for _, strat := range []Strategy{LinkGrammar, PatternOnly, ProximityOnly} {
		x := NewNumericExtractor(strat)
		got := x.Extract(vitalsRecord)
		if got[records.AttrPulse].Value != 84 {
			t.Errorf("%v: pulse = %v", strat, got[records.AttrPulse])
		}
	}
}

func TestNumericLinkGrammarBeatsPatternOnHardSentence(t *testing.T) {
	// A phrasing outside the four patterns: the keyword and its number
	// are separated by words that defeat shallow patterns but not graph
	// distance ("Weight is 211 pounds with a pulse of 96 ...").
	rec := "Vitals:  Weight is 211 pounds with a pulse of 96 and blood pressure of 144/90.\n"
	lg := NewNumericExtractor(LinkGrammar).Extract(rec)
	if lg[records.AttrWeight].Value != 211 {
		t.Errorf("link-grammar weight = %v, want 211", lg[records.AttrWeight])
	}
	if lg[records.AttrPulse].Value != 96 {
		t.Errorf("link-grammar pulse = %v, want 96", lg[records.AttrPulse])
	}
	if lg[records.AttrBloodPressure].Value != 144 {
		t.Errorf("link-grammar bp = %v, want 144", lg[records.AttrBloodPressure])
	}
}

func TestNumericYearFiltered(t *testing.T) {
	rec := "Social History:  She quit smoking in 1995.\nVitals:  Pulse of 96.\n"
	got := NewNumericExtractor(LinkGrammar).Extract(rec)
	if got[records.AttrPulse].Value != 96 {
		t.Errorf("pulse = %v", got[records.AttrPulse])
	}
}

func TestNumericMissingSection(t *testing.T) {
	got := NewNumericExtractor(LinkGrammar).Extract("Chief Complaint:  Breast pain.\n")
	if len(got) != 0 {
		t.Errorf("extracted from empty record: %v", got)
	}
}

func TestNumericE1Shape(t *testing.T) {
	// E1: on the default 50-record corpus (single dictation style) every
	// numeric attribute present in gold must be extracted exactly —
	// the paper reports 100% precision and recall.
	recs := records.Generate(records.DefaultGenOptions())
	x := NewNumericExtractor(LinkGrammar)
	correct, wrong, missed := 0, 0, 0
	for _, r := range recs {
		got := x.Extract(r.Text)
		for attr, gold := range r.Gold.Numeric {
			v, ok := got[attr]
			switch {
			case !ok:
				missed++
				t.Logf("record %d: %q missed", r.ID, attr)
			case v.Value == gold.Value && (!v.Ratio || v.Value2 == gold.Value2):
				correct++
			default:
				wrong++
				t.Logf("record %d: %q = %v/%v, want %v/%v", r.ID, attr, v.Value, v.Value2, gold.Value, gold.Value2)
			}
		}
	}
	if wrong != 0 || missed != 0 {
		t.Errorf("E1 shape broken: correct=%d wrong=%d missed=%d (want 100%%)", correct, wrong, missed)
	}
}

func TestStrategyString(t *testing.T) {
	if LinkGrammar.String() != "link-grammar" || PatternOnly.String() != "pattern-only" ||
		ProximityOnly.String() != "proximity-only" || Strategy(9).String() != "unknown" {
		t.Error("Strategy.String")
	}
}
