package eval

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPRPaperFormulas(t *testing.T) {
	// Two subjects: (2 true of 3 extracted, 4 gold), (1 of 1, 1 gold).
	var p PR
	p.Add(2, 3, 4)
	p.Add(1, 1, 1)
	if got := p.Precision(); got != 3.0/4 {
		t.Errorf("P = %v, want 0.75", got)
	}
	if got := p.Recall(); got != 3.0/5 {
		t.Errorf("R = %v, want 0.6", got)
	}
	if p.F1() <= 0 || p.F1() > 1 {
		t.Errorf("F1 = %v", p.F1())
	}
}

func TestPREdgeCases(t *testing.T) {
	var empty PR
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty PR should be perfect")
	}
	var noExtract PR
	noExtract.Add(0, 0, 3)
	if noExtract.Precision() != 0 || noExtract.Recall() != 0 {
		t.Errorf("no-extract: %v", noExtract)
	}
	var zeroF1 PR
	zeroF1.Add(0, 2, 3)
	if zeroF1.F1() != 0 {
		t.Error("F1 of zero P and R")
	}
}

func TestAddSetsNormalization(t *testing.T) {
	var p PR
	// "high blood pressures" and gold "blood high pressure" normalize to
	// the same key.
	p.AddSets([]string{"high blood pressures", "diabetes"}, []string{"blood high pressure"})
	if p.ETrue != 1 || p.ETotal != 2 || p.TInst != 1 {
		t.Errorf("AddSets counts = %+v", p)
	}
	// Duplicate extracted terms collapse.
	var q PR
	q.AddSets([]string{"diabetes", "Diabetes"}, []string{"diabetes"})
	if q.ETotal != 1 || q.ETrue != 1 {
		t.Errorf("dedup counts = %+v", q)
	}
}

// Property: precision and recall are always in [0,1], and ETrue ≤ both
// totals implies consistency.
func TestPRQuick(t *testing.T) {
	f := func(et, etot, tinst uint8) bool {
		e, o, ti := int(et%10), int(etot%10), int(tinst%10)
		if e > o {
			e = o
		}
		if e > ti {
			e = ti // true hits cannot exceed the gold count
		}
		var p PR
		p.Add(e, o, ti)
		pr, rc := p.Precision(), p.Recall()
		return pr >= 0 && pr <= 1 && rc >= 0 && rc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	var a Accuracy
	a.Add(true, true)
	a.Add(true, false)
	a.Add(false, false)
	if a.Precision() != 0.5 {
		t.Errorf("P = %v", a.Precision())
	}
	if a.Recall() != 1.0/3 {
		t.Errorf("R = %v", a.Recall())
	}
	var empty Accuracy
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty accuracy should be perfect")
	}
	if !strings.Contains(a.String(), "correct=1") {
		t.Errorf("String = %q", a.String())
	}
}

func TestTableRendering(t *testing.T) {
	var p PR
	p.Add(29, 30, 30)
	out := Table("Table 1", []struct {
		Label string
		PR    PR
	}{{"Predefined Past Medical History", p}})
	if !strings.Contains(out, "Predefined Past Medical History") || !strings.Contains(out, "96.7%") {
		t.Errorf("table = %q", out)
	}
}

func TestPRString(t *testing.T) {
	var p PR
	p.Add(1, 2, 4)
	s := p.String()
	if !strings.Contains(s, "P=50.0%") || !strings.Contains(s, "R=25.0%") {
		t.Errorf("String = %q", s)
	}
}
