package linkgram

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/pos"
	"repro/internal/textproc"
)

// Link is one typed link of a linkage between two parse words, identified
// by their indices into Linkage.Words.
type Link struct {
	Left, Right int
	Label       string
}

// ParseWord is one word that took part in the parse, with a back-pointer
// to the token it came from in the original sentence.
type ParseWord struct {
	Text       string
	Tag        pos.Tag
	TokenIndex int // index into the sentence's token slice; -1 for the wall
}

// Linkage is a complete planar, connected linkage of a sentence.
type Linkage struct {
	Words []ParseWord // Words[0] is the left wall
	Links []Link
}

// ErrNoLinkage is returned when the sentence has no complete linkage; the
// caller is expected to fall back to the pattern approach, exactly as the
// paper does for unparseable fragments.
var ErrNoLinkage = errors.New("linkgram: no complete linkage")

// MaxWords bounds parser input length; longer sentences are rejected
// immediately (the extractor then uses the pattern fallback).
const MaxWords = 28

// Parse parses a tagged sentence and returns its first complete linkage.
func Parse(tagged []pos.TaggedToken) (*Linkage, error) {
	p := newParser(tagged)
	if p == nil {
		return nil, ErrNoLinkage
	}
	if !p.feasible(0, len(p.words), p.wallRight, nil) {
		return nil, ErrNoLinkage
	}
	var links []Link
	if !p.build(0, len(p.words), p.wallRight, nil, &links) {
		return nil, ErrNoLinkage
	}
	return &Linkage{Words: p.words, Links: p.relabel(links)}, nil
}

// ParseSentence tags and parses a textproc sentence in one call.
func ParseSentence(s textproc.Sentence) (*Linkage, error) {
	return Parse(pos.TagSentence(s))
}

type parser struct {
	words     []ParseWord // index 0 is the wall; parse positions == indices
	cands     [][]disjunct
	in        *interner
	wallRight *node
	memo      map[memoKey]bool
}

type memoKey struct {
	l, r   int16
	le, re int32
}

// newParser prepares parse words, candidate disjuncts, and pruning.
// It returns nil when the sentence is unparseable a priori.
func newParser(tagged []pos.TaggedToken) *parser {
	in := newInterner()
	b := &dictBuilder{in: in}

	words := []ParseWord{{Text: "LEFT-WALL", TokenIndex: -1}}
	var cands [][]disjunct
	cands = append(cands, nil) // wall's disjuncts handled via wallRight
	for i := 0; i < len(tagged); i++ {
		t := tagged[i]
		txt := strings.ToLower(t.Text)
		// Multi-word idioms parse as one word ("as well as" behaves as a
		// conjunction).
		if family, span := matchIdiom(tagged, i); span > 0 {
			joined := tagged[i].Text
			for _, xt := range tagged[i+1 : i+span] {
				joined += " " + xt.Text
			}
			words = append(words, ParseWord{Text: joined, Tag: t.Tag, TokenIndex: i})
			cands = append(cands, b.idiomDisjuncts(family))
			i += span - 1
			continue
		}
		switch t.Kind {
		case textproc.Punct, textproc.Symbol:
			// Keep only coordination punctuation; drop the rest (final
			// periods, quotes, parens).
			if txt != "," && txt != ";" {
				continue
			}
		}
		ds := b.disjunctsFor(t.Text, t.Tag)
		if ds == nil {
			// A word with no connector candidates (interjections) makes a
			// full linkage impossible.
			if t.Kind == textproc.Word || t.Kind == textproc.Number {
				return nil
			}
			continue
		}
		words = append(words, ParseWord{Text: t.Text, Tag: t.Tag, TokenIndex: i})
		cands = append(cands, ds)
	}
	if len(words) <= 1 || len(words) > MaxWords {
		return nil
	}
	p := &parser{
		words:     words,
		cands:     cands,
		in:        in,
		wallRight: in.fromNearFirst([]string{cW}),
		memo:      make(map[memoKey]bool),
	}
	p.prune()
	return p
}

// matchIdiom reports the idiom family and token span when the tokens at
// position i start a known multi-word idiom.
func matchIdiom(tagged []pos.TaggedToken, i int) (string, int) {
	for idiom, family := range idioms {
		parts := strings.Fields(idiom)
		if i+len(parts) > len(tagged) {
			continue
		}
		ok := true
		for j, p := range parts {
			if !strings.EqualFold(tagged[i+j].Text, p) {
				ok = false
				break
			}
		}
		if ok {
			return family, len(parts)
		}
	}
	return "", 0
}

// prune repeatedly drops disjuncts with a connector that cannot match any
// connector of any other word on the required side ("power pruning").
func (p *parser) prune() {
	for pass := 0; pass < 6; pass++ {
		// rightAvail[name] = true if some word offers name right-pointing
		// (including the wall). leftAvail likewise.
		rightAvail := map[string]bool{cW: true}
		leftAvail := map[string]bool{}
		for i := 1; i < len(p.words); i++ {
			for _, d := range p.cands[i] {
				for n := d.right; n != nil; n = n.next {
					rightAvail[n.name] = true
				}
				for n := d.left; n != nil; n = n.next {
					leftAvail[n.name] = true
				}
			}
		}
		changed := false
		for i := 1; i < len(p.words); i++ {
			kept := p.cands[i][:0]
			for _, d := range p.cands[i] {
				ok := true
				for n := d.left; n != nil && ok; n = n.next {
					ok = rightAvail[n.name]
				}
				for n := d.right; n != nil && ok; n = n.next {
					ok = leftAvail[n.name]
				}
				if ok {
					kept = append(kept, d)
				} else {
					changed = true
				}
			}
			p.cands[i] = kept
		}
		if !changed {
			return
		}
	}
}

// feasible implements the Sleator–Temperley region count as a boolean:
// can the region strictly between words L and R be completed, where le is
// the list of L's remaining right connectors (farthest-first) and re is
// the list of R's remaining left connectors (farthest-first)? R ==
// len(words) is the right sentinel with no connectors.
func (p *parser) feasible(L, R int, le, re *node) bool {
	if L+1 == R {
		return le == nil && re == nil
	}
	key := memoKey{l: int16(L), r: int16(R), le: listID(le), re: listID(re)}
	if v, ok := p.memo[key]; ok {
		return v
	}
	p.memo[key] = false // guard against (impossible) cycles
	res := p.anyWord(L, R, le, re, nil)
	p.memo[key] = res
	return res
}

// anyWord enumerates the splitting word W and its disjuncts. When out is
// non-nil it records the links of the first solution found and returns
// after completing it. The enumeration considers:
//
//	case A: W links to L via le.head ↔ d.left.head, then either also links
//	        to R (A1) or not (A2);
//	case B: le is empty and W links to R via d.right.head ↔ re.head, with
//	        the left sub-region closed by W's remaining left connectors.
//
// Choosing W as the target of le's farthest connector (case A) or, when
// le is empty, of re's farthest connector (case B) makes every linkage
// counted exactly once.
func (p *parser) anyWord(L, R int, le, re *node, out *[]Link) bool {
	for W := L + 1; W < R; W++ {
		for _, d := range p.cands[W] {
			// Case A: W ↔ L.
			if le != nil && d.left != nil && match(le.name, d.left.name) {
				if p.feasible(L, W, le.next, d.left.next) {
					// A1: W also links to R.
					if re != nil && d.right != nil && match(d.right.name, re.name) &&
						p.feasible(W, R, d.right.next, re.next) {
						if out == nil {
							return true
						}
						*out = append(*out, Link{Left: L, Right: W, Label: le.name}, Link{Left: W, Right: R, Label: re.name})
						if p.build(L, W, le.next, d.left.next, out) && p.build(W, R, d.right.next, re.next, out) {
							return true
						}
						return false
					}
					// A2: W does not link directly to R.
					if p.feasible(W, R, d.right, re) {
						if out == nil {
							return true
						}
						*out = append(*out, Link{Left: L, Right: W, Label: le.name})
						if p.build(L, W, le.next, d.left.next, out) && p.build(W, R, d.right, re, out) {
							return true
						}
						return false
					}
				}
			}
			// Case B: le empty; W links to R.
			if le == nil && re != nil && d.right != nil && match(d.right.name, re.name) {
				if p.feasible(L, W, nil, d.left) && p.feasible(W, R, d.right.next, re.next) {
					if out == nil {
						return true
					}
					*out = append(*out, Link{Left: W, Right: R, Label: re.name})
					if p.build(L, W, nil, d.left, out) && p.build(W, R, d.right.next, re.next, out) {
						return true
					}
					return false
				}
			}
		}
	}
	return false
}

// build reconstructs the links of one feasible solution for the region.
// It must only be called on feasible regions.
func (p *parser) build(L, R int, le, re *node, out *[]Link) bool {
	if L+1 == R {
		return le == nil && re == nil
	}
	return p.anyWord(L, R, le, re, out)
}

// relabel rewrites link labels for presentation: an A link whose left word
// is a noun becomes AN (noun-noun modifier, as in Figure 1's
// Blood—AN—pressure), and links incident to the sentinel are dropped.
func (p *parser) relabel(links []Link) []Link {
	kept := links[:0]
	for _, l := range links {
		if l.Right >= len(p.words) {
			continue // sentinel link cannot occur, but be safe
		}
		if l.Label == cA && p.words[l.Left].Tag.IsNoun() {
			l.Label = "AN"
		}
		kept = append(kept, l)
	}
	return kept
}

// WordIndexForToken returns the parse-word index for a sentence token
// index, or -1 when the token was dropped before parsing.
func (lk *Linkage) WordIndexForToken(tokenIndex int) int {
	for i, w := range lk.Words {
		if w.TokenIndex == tokenIndex {
			return i
		}
	}
	return -1
}

// String renders the linkage compactly: word list and links.
func (lk *Linkage) String() string {
	var b strings.Builder
	for i, w := range lk.Words {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w.Text)
	}
	b.WriteByte('\n')
	for _, l := range lk.Links {
		fmt.Fprintf(&b, "%s(%s, %s) ", l.Label, lk.Words[l.Left].Text, lk.Words[l.Right].Text)
	}
	return strings.TrimSpace(b.String())
}
